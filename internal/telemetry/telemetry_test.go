package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
)

// --- Histogram edge cases ---

func TestHistogramZeroSamples(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("zero histogram snapshot = %+v", s)
	}
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.Max() != 0 {
		t.Fatalf("zero histogram stats: mean=%v p50=%d max=%d", s.Mean(), s.Percentile(50), s.Max())
	}
	if got, want := s.String(), "n=0 mean=0.0 p50<=0 p99<=0 max<=0"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	// 100..127 all share bit length 7: one bucket.
	for v := int64(100); v < 128; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 28 {
		t.Fatalf("Count = %d, want 28", s.Count)
	}
	if len(s.Buckets) != 1 || s.Buckets[7] != 28 {
		t.Fatalf("Buckets = %v, want {7: 28}", s.Buckets)
	}
	// Every percentile and the max collapse to the bucket's upper bound.
	if s.Percentile(1) != 127 || s.Percentile(50) != 127 || s.Percentile(100) != 127 || s.Max() != 127 {
		t.Fatalf("single-bucket stats: p1=%d p50=%d p100=%d max=%d, want all 127",
			s.Percentile(1), s.Percentile(50), s.Percentile(100), s.Max())
	}
	if got, want := s.Mean(), 113.5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistogramMaxValueClamp(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	// MaxInt64 = 2^63-1 has bit length 63; the top occupied bucket's
	// upper bound must still report exactly MaxInt64, not overflow.
	if s.Buckets[63] != 2 {
		t.Fatalf("bucket 63 = %d, want 2 (MaxInt64 samples); buckets %v", s.Buckets[63], s.Buckets)
	}
	if s.Max() != math.MaxInt64 || s.Percentile(99) != math.MaxInt64 {
		t.Fatalf("max=%d p99=%d, want MaxInt64", s.Max(), s.Percentile(99))
	}
}

func TestHistogramNonPositiveSamples(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-17)
	s := h.Snapshot()
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (v <= 0 samples)", s.Buckets[0])
	}
	if s.Max() != 0 {
		t.Fatalf("Max = %d, want 0", s.Max())
	}
}

func TestHistogramDiff(t *testing.T) {
	var h Histogram
	h.Observe(3)
	prev := h.Snapshot()
	h.Observe(3)
	h.Observe(1000)
	d := h.Snapshot().Diff(prev)
	if d.Count != 2 || d.Sum != 1003 {
		t.Fatalf("diff = %+v, want count 2 sum 1003", d)
	}
	if d.Buckets[2] != 1 || d.Buckets[10] != 1 {
		t.Fatalf("diff buckets = %v, want {2:1, 10:1}", d.Buckets)
	}
}

// --- Nil-safety: the disabled stack must not panic anywhere ---

func TestNilInstrumentsAreNoops(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter loaded nonzero")
	}
	var g *Gauge
	g.Set(9)
	g.Add(-2)
	if g.Load() != 0 || g.Peak() != 0 {
		t.Fatal("nil gauge loaded nonzero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram counted")
	}
	var r *Ring
	r.Record(EvSent, 1, 2, 3, 4)
	if r.Total() != 0 || r.Dropped() != 0 || r.Snapshot() != nil || r.KindCounts() != nil {
		t.Fatal("nil ring not empty")
	}
	var reg *Registry
	sink := reg.Sink("x")
	if sink.Enabled() {
		t.Fatal("nil registry produced an enabled sink")
	}
	sink.Counter("a").Inc()
	sink.Gauge("b").Set(1)
	sink.Histogram("c").Observe(1)
	sink.Event(EvSent, 1, 2, 3, 4)
	if got := reg.Snapshot(); len(got.Scopes) != 0 {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
	if Nop().Enabled() {
		t.Fatal("Nop() reports enabled")
	}
}

// --- Ring ---

func TestRingWraparound(t *testing.T) {
	r := NewRing(16)
	const total = 100
	for i := 0; i < total; i++ {
		kind := EvSent
		if i%2 == 1 {
			kind = EvReceived
		}
		r.Record(kind, uint32(i), uint32(i), uint64(i), int64(i))
	}
	if r.Total() != total {
		t.Fatalf("Total = %d, want %d", r.Total(), total)
	}
	if r.Dropped() != total-16 {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), total-16)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	// The retained window is exactly the newest 16, in record order.
	for i, ev := range evs {
		want := uint64(total - 16 + i + 1)
		if ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d", i, ev.Seq, want)
		}
		if uint64(ev.CID) != ev.Seq-1 || ev.SN != ev.Seq-1 || ev.Arg != int64(ev.Seq-1) {
			t.Fatalf("event payload incoherent: %v", ev)
		}
	}
	// Per-kind totals survive the wraparound.
	kc := r.KindCounts()
	if kc[EvSent] != 50 || kc[EvReceived] != 50 {
		t.Fatalf("KindCounts = %v, want 50/50", kc)
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(64)
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Payload fields all derive from the writer id, so a
				// torn read mixing two writers is detectable.
				r.Record(EvPlaced, uint32(w), uint32(w), uint64(w)<<32|uint64(i), int64(w))
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
	if kc := r.KindCounts(); kc[EvPlaced] != writers*perWriter {
		t.Fatalf("KindCounts = %v", kc)
	}
	evs := r.Snapshot()
	if len(evs) == 0 {
		t.Fatal("empty snapshot after concurrent writes")
	}
	for _, ev := range evs {
		if ev.Kind != EvPlaced || ev.CID != ev.TID ||
			uint32(ev.SN>>32) != ev.CID || ev.Arg != int64(ev.CID) {
			t.Fatalf("torn event: %v", ev)
		}
		if ev.Seq == 0 || ev.Seq > writers*perWriter {
			t.Fatalf("event Seq out of range: %v", ev)
		}
	}
}

func TestRingSnapshotDuringWrites(t *testing.T) {
	r := NewRing(16)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				r.Record(EvSent, 7, 7, uint64(i), 7)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for _, ev := range r.Snapshot() {
			if ev.CID != 7 || ev.TID != 7 || ev.Arg != 7 {
				t.Errorf("torn event under concurrent writes: %v", ev)
			}
		}
	}
	close(done)
	wg.Wait()
}

// --- Registry snapshot / diff ---

func TestSnapshotAndDiff(t *testing.T) {
	reg := New(16)
	s1 := reg.Sink("alpha")
	s1.Counter("hits").Add(10)
	s1.Gauge("level").Set(3)
	s1.Histogram("sizes").Observe(100)
	s1.Event(EvSent, 1, 2, 3, 4)

	prev := reg.Snapshot()

	s1.Counter("hits").Add(5)
	s1.Gauge("level").Set(9)
	s1.Histogram("sizes").Observe(200)
	s1.Event(EvComplete, 1, 2, 3, 0)
	reg.Sink("beta").Counter("other").Inc()

	cur := reg.Snapshot()
	d := cur.Diff(prev)

	if got := d.Scopes["alpha"].Counters["hits"]; got != 5 {
		t.Fatalf("diff hits = %d, want 5", got)
	}
	if got := d.Scopes["beta"].Counters["other"]; got != 1 {
		t.Fatalf("diff new-scope counter = %d, want 1", got)
	}
	// Gauges keep their current reading (levels don't subtract).
	if g := d.Scopes["alpha"].Gauges["level"]; g.Value != 9 || g.Peak != 9 {
		t.Fatalf("diff gauge = %+v, want current 9", g)
	}
	if h := d.Scopes["alpha"].Histograms["sizes"]; h.Count != 1 || h.Sum != 200 {
		t.Fatalf("diff histogram = %+v, want the one new sample", h)
	}
	if d.EventTotal != 1 {
		t.Fatalf("diff EventTotal = %d, want 1 (one event since prev)", d.EventTotal)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != EvComplete {
		t.Fatalf("diff events = %v, want just the new EvComplete", d.Events)
	}
	if d.EventCounts[EvSent.String()] != 0 || d.EventCounts[EvComplete.String()] != 1 {
		t.Fatalf("diff EventCounts = %v", d.EventCounts)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	reg := New(16)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		s := reg.Sink(name)
		s.Counter("c").Inc()
		s.Gauge("g").Set(2)
		s.Histogram("h").Observe(5)
	}
	reg.Sink("alpha").Event(EvSent, 1, 1, 1, 1)
	var a, b bytes.Buffer
	reg.Snapshot().WriteText(&a)
	reg.Snapshot().WriteText(&b)
	if a.String() != b.String() {
		t.Fatal("WriteText not deterministic across identical snapshots")
	}
	for _, want := range []string{"scope alpha", "scope mid", "scope zeta", "events total=1"} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Fatalf("WriteText output missing %q:\n%s", want, a.String())
		}
	}
}

// --- HTTP endpoint ---

func TestHTTPEndpoint(t *testing.T) {
	reg := New(16)
	sink := reg.Sink("web")
	sink.Counter("hits").Add(3)
	sink.Event(EvSent, 1, 2, 3, 4)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", srv.Addr())

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/telemetry"), &snap); err != nil {
		t.Fatalf("/telemetry not JSON: %v", err)
	}
	if snap.Scopes["web"].Counters["hits"] != 3 {
		t.Fatalf("/telemetry snapshot = %+v", snap)
	}
	if snap.EventTotal != 1 {
		t.Fatalf("/telemetry EventTotal = %d", snap.EventTotal)
	}
	if txt := get("/telemetry/text"); !bytes.Contains(txt, []byte("scope web")) {
		t.Fatalf("/telemetry/text missing scope:\n%s", txt)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["chunks"]; !ok {
		t.Fatal("/debug/vars missing the chunks registry")
	}
}
