package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// EventKind labels one step of a chunk's lifecycle through the stack.
type EventKind uint8

// The lifecycle a TPDU's chunks travel: cut and sent, packed into a
// datagram envelope, possibly fragmented to fit the MTU, received,
// placed into the stream, and finally verified end-to-end — or reaped
// when the peer stops making progress. Retransmissions, peer death and
// server-side connection expiry are the exception paths.
const (
	EvSent       EventKind = iota + 1 // TPDU cut and transmitted (sender)
	EvEnveloped                       // datagram envelope emitted (sender)
	EvFragmented                      // chunk split to fit the MTU (packer)
	EvRetransmit                      // timer/NACK retransmission (sender)
	EvReceived                        // data chunk arrived (receiver)
	EvPlaced                          // fresh interval placed (receiver)
	EvComplete                        // TPDU verified end-to-end (receiver)
	EvReaped                          // stale TPDU state dropped (receiver)
	EvPeerDead                        // sender gave up (MaxRetries)
	EvExpired                         // server idle-expired a connection

	evKinds // one past the last kind
)

func (k EventKind) String() string {
	switch k {
	case EvSent:
		return "sent"
	case EvEnveloped:
		return "enveloped"
	case EvFragmented:
		return "fragmented"
	case EvRetransmit:
		return "retransmit"
	case EvReceived:
		return "received"
	case EvPlaced:
		return "placed"
	case EvComplete:
		return "complete"
	case EvReaped:
		return "reaped"
	case EvPeerDead:
		return "peer_dead"
	case EvExpired:
		return "expired"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// An Event is one lifecycle step, keyed by the chunk's own labels —
// the self-describing headers of the paper make the trace key free.
// SN is the label most specific to the event (T.SN for chunk-level
// events, the TPDU's first C.SN for TPDU-level ones); Arg carries the
// event's magnitude (bytes, elements, retries).
type Event struct {
	Seq  uint64    `json:"seq"` // 1-based global record order
	Kind EventKind `json:"kind"`
	CID  uint32    `json:"cid"`
	TID  uint32    `json:"tid"`
	SN   uint64    `json:"sn"`
	Arg  int64     `json:"arg"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s C.ID=%d T.ID=%d SN=%d arg=%d",
		e.Seq, e.Kind, e.CID, e.TID, e.SN, e.Arg)
}

// slot is one ring entry. Every field is atomic so concurrent
// writers/readers are race-clean; the seq word doubles as the
// per-slot publication marker (0 = being written), making torn reads
// detectable: a reader accepts a slot only if seq is unchanged across
// the field loads.
type slot struct {
	seq atomic.Uint64 // claimIdx<<8 | kind; 0 while being written
	ids atomic.Uint64 // CID<<32 | TID
	sn  atomic.Uint64
	arg atomic.Int64
}

// A Ring is a fixed-size lock-free buffer of the most recent lifecycle
// events, shared by every instrumented component of a registry.
// Writers claim a slot with one atomic add and publish with atomic
// stores; the ring never blocks and never allocates on the record
// path. Old events are overwritten. Per-kind totals survive
// wraparound. A nil *Ring is a no-op.
type Ring struct {
	mask  uint64
	slots []slot
	next  atomic.Uint64
	kinds [evKinds]atomic.Uint64
}

// NewRing returns a ring retaining capacity events, rounded up to a
// power of two (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	n := 1 << bits.Len(uint(capacity-1))
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Record appends one event. Safe for concurrent writers; no-op on nil.
func (r *Ring) Record(kind EventKind, cid, tid uint32, sn uint64, arg int64) {
	if r == nil {
		return
	}
	idx := r.next.Add(1) // 1-based, so seq 0 stays "empty/busy"
	s := &r.slots[(idx-1)&r.mask]
	s.seq.Store(0) // invalidate while rewriting
	s.ids.Store(uint64(cid)<<32 | uint64(tid))
	s.sn.Store(sn)
	s.arg.Store(arg)
	s.seq.Store(idx<<8 | uint64(kind))
	if int(kind) < len(r.kinds) {
		r.kinds[kind].Add(1)
	}
}

// Total returns how many events were ever recorded (0 on nil).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Dropped returns how many events have been overwritten (0 on nil).
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	total, cap64 := r.next.Load(), r.mask+1
	if total <= cap64 {
		return 0
	}
	return total - cap64
}

// KindCounts returns the per-kind totals (nil on nil). These count
// every event ever recorded, not just the retained window.
func (r *Ring) KindCounts() map[EventKind]uint64 {
	if r == nil {
		return nil
	}
	out := map[EventKind]uint64{}
	for k := 1; k < len(r.kinds); k++ {
		if n := r.kinds[k].Load(); n > 0 {
			out[EventKind(k)] = n
		}
	}
	return out
}

// Snapshot returns the retained events in record order. Under
// concurrent writers the copy is best-effort: slots caught mid-write
// are skipped (the seq word changed across the read), never torn.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		ids, sn, arg := s.ids.Load(), s.sn.Load(), s.arg.Load()
		if s.seq.Load() != seq {
			continue // overwritten while reading
		}
		out = append(out, Event{
			Seq:  seq >> 8,
			Kind: EventKind(seq & 0xff),
			CID:  uint32(ids >> 32),
			TID:  uint32(ids),
			SN:   sn,
			Arg:  arg,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
