package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar package publishes into one process-global map, so the
// registry it reflects is process-global too: the most recent Serve
// call wins. Published once under the name "chunks".
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// A Server is the live-introspection HTTP endpoint of one registry:
//
//	/telemetry         JSON snapshot of every scope + retained events
//	/telemetry/text    the same snapshot rendered by WriteText
//	/debug/vars        expvar (includes the snapshot under "chunks")
//	/debug/pprof/...   net/http/pprof
//
// It is strictly read-only: handlers snapshot and render, nothing
// flows back into the stack.
type Server struct {
	l  net.Listener
	s  *http.Server
	wg sync.WaitGroup // joins the Serve goroutine on Close
}

// Serve starts the introspection endpoint on addr ("host:0" picks a
// free port).
func Serve(addr string, reg *Registry) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvarOnce.Do(func() {
		expvar.Publish("chunks", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	expvarReg.Store(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/telemetry/text", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &Server{l: l, s: &http.Server{Handler: mux}}
	srv.wg.Add(1)
	go func() {
		defer srv.wg.Done()
		_ = srv.s.Serve(l)
	}()
	return srv, nil
}

// Addr returns the bound address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// Close stops the endpoint and joins its serve goroutine.
func (s *Server) Close() error {
	err := s.s.Close()
	s.wg.Wait()
	return err
}
