// Package telemetry is the always-on observability substrate of the
// live stack: lock-free counters, gauges and log2-bucketed histograms,
// a fixed-size ring buffer of chunk-lifecycle events keyed by the
// chunks' own (C.ID, T.SN) labels, and a registry of named scopes with
// snapshot/diff APIs plus an optional stdlib-only HTTP endpoint.
//
// The paper's self-describing headers make per-chunk tracing nearly
// free: every event a component records already carries the labels
// that identify the data, so no lookup or correlation state is needed
// on the hot path.
//
// Two invariants govern the package:
//
//  1. Zero cost when disabled. Components hold a Sink; the zero Sink
//     resolves every instrument to nil, and every instrument method is
//     a no-op on a nil receiver (a single predictable branch). The
//     root BenchmarkTelemetryHotPath pins instrumented-vs-no-op within
//     noise.
//  2. Determinism-safe. Nothing in this package reads the wall clock
//     or an unseeded RNG, and no telemetry read feeds back into
//     protocol logic: instruments are write-only from the stack's
//     perspective (TestTelemetryDoesNotAffectProtocol and the source
//     audit in determinism_test.go enforce this).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic count. All methods
// are safe on a nil receiver (no-ops / zero), so disabled telemetry
// costs one branch.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an instantaneous atomic level (window occupancy, live
// connections). Nil receivers are no-ops.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set stores the current level and raises the peak if exceeded.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add moves the level by d (negative to lower) and raises the peak.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.raise(g.v.Add(d))
}

func (g *Gauge) raise(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current level (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Peak returns the highest level ever set (0 on nil).
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// A Scope is one named bag of instruments (per connection, per
// subsystem). Instrument lookup takes the scope lock once at
// resolution time; the returned instruments are lock-free. A nil
// *Scope resolves every instrument to nil.
type Scope struct {
	name     string
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// Name returns the scope's registry name ("" on nil).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Counter returns the named counter, creating it on first use.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = new(Counter)
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = new(Gauge)
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = new(Histogram)
		s.hists[name] = h
	}
	return h
}

// A Sink is what an instrumented component holds: a Scope to resolve
// named instruments from plus the shared lifecycle event Ring. The
// zero Sink (Nop) is the disabled state — every instrument resolves to
// nil and every event record is a no-op — so configs embed a Sink by
// value and stay zero-value ready.
type Sink struct {
	Scope *Scope
	Ring  *Ring
}

// Nop returns the disabled sink (the zero value, named for clarity).
func Nop() Sink { return Sink{} }

// Enabled reports whether the sink has a live scope.
func (s Sink) Enabled() bool { return s.Scope != nil }

// Counter resolves a named counter (nil when disabled).
func (s Sink) Counter(name string) *Counter { return s.Scope.Counter(name) }

// Gauge resolves a named gauge (nil when disabled).
func (s Sink) Gauge(name string) *Gauge { return s.Scope.Gauge(name) }

// Histogram resolves a named histogram (nil when disabled).
func (s Sink) Histogram(name string) *Histogram { return s.Scope.Histogram(name) }

// Event records one chunk-lifecycle event on the shared ring (no-op
// when disabled).
func (s Sink) Event(kind EventKind, cid, tid uint32, sn uint64, arg int64) {
	s.Ring.Record(kind, cid, tid, sn, arg)
}

// A Registry holds the named scopes of one process plus the shared
// lifecycle event ring. All methods are safe on a nil *Registry
// (returning disabled scopes/sinks), so "no telemetry" is spelled by
// leaving the Config field nil.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope // guarded by mu
	ring   *Ring
}

// New returns a Registry whose lifecycle ring holds ringCap events
// (rounded up to a power of two; 0 means 4096).
func New(ringCap int) *Registry {
	if ringCap <= 0 {
		ringCap = 4096
	}
	return &Registry{
		scopes: make(map[string]*Scope),
		ring:   NewRing(ringCap),
	}
}

// Scope returns the named scope, creating it on first use (nil on a
// nil registry).
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scopes[name]
	if s == nil {
		s = &Scope{
			name:     name,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.scopes[name] = s
	}
	return s
}

// Sink returns a live Sink bound to the named scope and the shared
// ring — or the no-op Sink on a nil registry.
func (r *Registry) Sink(name string) Sink {
	if r == nil {
		return Sink{}
	}
	return Sink{Scope: r.Scope(name), Ring: r.ring}
}

// Ring returns the shared lifecycle event ring (nil on nil).
func (r *Registry) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// GaugeValue is one gauge reading: the level at snapshot time and the
// peak ever seen.
type GaugeValue struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// ScopeSnapshot is the frozen state of one scope.
type ScopeSnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue   `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot is a consistent-enough copy of the whole registry: every
// instrument's value, the retained lifecycle events, and the per-kind
// event totals (which outlive ring wraparound).
type Snapshot struct {
	Scopes      map[string]ScopeSnapshot `json:"scopes"`
	Events      []Event                  `json:"events,omitempty"`
	EventTotal  uint64                   `json:"event_total"`
	EventCounts map[string]uint64        `json:"event_counts,omitempty"`
}

// Snapshot freezes the registry. Safe on nil (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Scopes: map[string]ScopeSnapshot{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.scopes))
	for n := range r.scopes {
		names = append(names, n)
	}
	// Snapshots are diffed and printed; scope order must not vary run
	// to run.
	sort.Strings(names)
	scopes := make([]*Scope, 0, len(names))
	for _, n := range names {
		scopes = append(scopes, r.scopes[n])
	}
	r.mu.Unlock()

	for i, s := range scopes {
		ss := ScopeSnapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]GaugeValue{},
			Histograms: map[string]HistSnapshot{},
		}
		s.mu.Lock()
		for n, c := range s.counters {
			ss.Counters[n] = c.Load()
		}
		for n, g := range s.gauges {
			ss.Gauges[n] = GaugeValue{Value: g.Load(), Peak: g.Peak()}
		}
		for n, h := range s.hists {
			ss.Histograms[n] = h.Snapshot()
		}
		s.mu.Unlock()
		snap.Scopes[names[i]] = ss
	}
	if r.ring != nil {
		snap.Events = r.ring.Snapshot()
		snap.EventTotal = r.ring.Total()
		counts := r.ring.KindCounts()
		if len(counts) > 0 {
			snap.EventCounts = make(map[string]uint64, len(counts))
			for k, n := range counts {
				snap.EventCounts[k.String()] = n
			}
		}
	}
	return snap
}

// Diff returns the change from prev to s: counters, histogram counts
// and event totals are subtracted; gauges keep their current reading;
// only events recorded after prev are retained.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Scopes:     map[string]ScopeSnapshot{},
		EventTotal: s.EventTotal - prev.EventTotal,
	}
	for name, cur := range s.Scopes {
		old := prev.Scopes[name]
		d := ScopeSnapshot{
			Counters:   map[string]int64{},
			Gauges:     cur.Gauges,
			Histograms: map[string]HistSnapshot{},
		}
		for n, v := range cur.Counters {
			d.Counters[n] = v - old.Counters[n]
		}
		for n, h := range cur.Histograms {
			d.Histograms[n] = h.Diff(old.Histograms[n])
		}
		out.Scopes[name] = d
	}
	for _, ev := range s.Events {
		if ev.Seq > prev.EventTotal {
			out.Events = append(out.Events, ev)
		}
	}
	if len(s.EventCounts) > 0 {
		out.EventCounts = make(map[string]uint64, len(s.EventCounts))
		for k, n := range s.EventCounts {
			out.EventCounts[k] = n - prev.EventCounts[k]
		}
	}
	return out
}

// WriteText renders the snapshot for humans, deterministically sorted.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Scopes))
	for n := range s.Scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := s.Scopes[name]
		fmt.Fprintf(w, "scope %s\n", name)
		for _, n := range sortedKeys(ss.Counters) {
			fmt.Fprintf(w, "  %-24s %d\n", n, ss.Counters[n])
		}
		for _, n := range sortedKeys(ss.Gauges) {
			g := ss.Gauges[n]
			fmt.Fprintf(w, "  %-24s %d (peak %d)\n", n, g.Value, g.Peak)
		}
		for _, n := range sortedKeys(ss.Histograms) {
			fmt.Fprintf(w, "  %-24s %s\n", n, ss.Histograms[n])
		}
	}
	if s.EventTotal > 0 {
		fmt.Fprintf(w, "events total=%d retained=%d\n", s.EventTotal, len(s.Events))
		for _, k := range sortedKeys(s.EventCounts) {
			fmt.Fprintf(w, "  %-24s %d\n", k, s.EventCounts[k])
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
