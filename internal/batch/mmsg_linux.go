//go:build linux && (amd64 || arm64)

// recvmmsg/sendmmsg fast path. The raw syscalls are issued through
// syscall.RawConn callbacks so the runtime poller still owns the file
// descriptor: EAGAIN returns false from the callback, parking the
// goroutine until readability/writability (or the socket deadline, or
// Close) — exactly the blocking semantics of the stdlib read path,
// with one syscall per burst instead of one per datagram.
package batch

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-filled datagram length, padded to 8-byte alignment (hence
// the amd64/arm64 build constraint).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

type mmsgReader struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny

	// Results are passed from the hoisted callback through fields: a
	// closure built per Read would allocate on every wakeup.
	n     int
	errno syscall.Errno
	fn    func(fd uintptr) bool
}

func newMmsgReader(conn *net.UDPConn, bufs [][]byte) *mmsgReader {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	m := &mmsgReader{
		rc:    rc,
		hdrs:  make([]mmsghdr, len(bufs)),
		iovs:  make([]syscall.Iovec, len(bufs)),
		names: make([]syscall.RawSockaddrAny, len(bufs)),
	}
	for i, b := range bufs {
		m.iovs[i].Base = &b[0]
		m.iovs[i].SetLen(len(b))
		m.hdrs[i].hdr.Iov = &m.iovs[i]
		m.hdrs[i].hdr.Iovlen = 1
		m.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.names[i]))
		m.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(m.names[i]))
	}
	m.fn = func(fd uintptr) bool {
		for {
			n, _, errno := syscall.Syscall6(sysRECVMMSG,
				fd, uintptr(unsafe.Pointer(&m.hdrs[0])), uintptr(len(m.hdrs)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park until readable (or deadline/close)
			}
			m.n, m.errno = int(n), errno
			return true
		}
	}
	return m
}

func (m *mmsgReader) read(lens []int, addrs []netip.AddrPort) (int, error) {
	for i := range m.hdrs {
		// The kernel overwrites Namelen per datagram; restore it.
		m.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(m.names[0]))
	}
	if err := m.rc.Read(m.fn); err != nil {
		return 0, err // deadline expiry or closed socket, from the poller
	}
	if m.errno != 0 {
		return 0, m.errno //lint:allow hotalloc cold error path: errno boxed into the error interface
	}
	for i := 0; i < m.n; i++ {
		lens[i] = int(m.hdrs[i].len)
		addrs[i] = sockaddrToAddrPort(&m.names[i])
	}
	return m.n, nil
}

// sockaddrToAddrPort converts a kernel-filled raw sockaddr. IPv4-mapped
// IPv6 sources are unmapped so the address formats identically to what
// ReadFromUDP reports for the same peer.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port)) // network byte order
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}

type mmsgWriter struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec

	// Window state for the hoisted callback, as in mmsgReader.
	cnt   int
	sent  int
	errno syscall.Errno
	fn    func(fd uintptr) bool
}

func newMmsgWriter(conn *net.UDPConn, slots int) *mmsgWriter {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	m := &mmsgWriter{rc: rc, hdrs: make([]mmsghdr, slots), iovs: make([]syscall.Iovec, slots)}
	for i := range m.hdrs {
		m.hdrs[i].hdr.Iov = &m.iovs[i]
		m.hdrs[i].hdr.Iovlen = 1
		// Name stays nil: the Writer contract requires a connected
		// socket, so destinations come from the connection.
	}
	m.fn = func(fd uintptr) bool {
		for {
			n, _, errno := syscall.Syscall6(sysSENDMMSG,
				fd, uintptr(unsafe.Pointer(&m.hdrs[m.sent])), uintptr(m.cnt-m.sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park until writable
			}
			if errno != 0 {
				m.errno = errno
				return true
			}
			m.sent += int(n)
			// A short send count means the socket buffer filled part
			// way through: report progress and let write() re-enter.
			return true
		}
	}
	return m
}

func (m *mmsgWriter) write(dgrams [][]byte) error {
	for len(dgrams) > 0 {
		n := min(len(dgrams), len(m.hdrs))
		for i := 0; i < n; i++ {
			d := dgrams[i]
			if len(d) == 0 {
				m.iovs[i].Base = nil
				m.iovs[i].SetLen(0)
				continue
			}
			m.iovs[i].Base = &d[0]
			m.iovs[i].SetLen(len(d))
		}
		m.cnt, m.sent, m.errno = n, 0, 0
		for m.sent < m.cnt {
			if err := m.rc.Write(m.fn); err != nil {
				return err
			}
			if m.errno != 0 {
				return m.errno //lint:allow hotalloc cold error path: errno boxed into the error interface
			}
		}
		dgrams = dgrams[n:]
	}
	return nil
}
