//go:build linux && arm64

package batch

// Syscall numbers absent from the frozen syscall package tables.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
