//go:build linux && amd64

package batch

// Syscall numbers absent from the frozen syscall package tables.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
