//go:build !linux || !(amd64 || arm64)

// Stub for platforms without the recvmmsg/sendmmsg fast path (or whose
// mmsghdr layout differs from the 64-bit one we define): constructors
// return nil and the Reader/Writer run their portable implementations.
package batch

import (
	"net"
	"net/netip"
)

type mmsgReader struct{}

func newMmsgReader(conn *net.UDPConn, bufs [][]byte) *mmsgReader { return nil }

func (m *mmsgReader) read(lens []int, addrs []netip.AddrPort) (int, error) {
	panic("batch: mmsg path on unsupported platform")
}

type mmsgWriter struct{}

func newMmsgWriter(conn *net.UDPConn, slots int) *mmsgWriter { return nil }

func (m *mmsgWriter) write(dgrams [][]byte) error {
	panic("batch: mmsg path on unsupported platform")
}
