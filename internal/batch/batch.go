// Package batch moves many UDP datagrams per syscall wakeup. The
// paper's argument is that per-unit bookkeeping — not data touching —
// is what caps protocol processing rates; on the receive path of this
// implementation the same holds for the kernel boundary: one
// recvfrom(2) per datagram costs a syscall, a poller arm and a
// scheduler round trip per ~1.4 KiB of payload. A Reader amortises
// that fixed cost over a whole burst (recvmmsg(2) on Linux, a
// deadline-bounded drain elsewhere), and a Writer does the same for
// transmission (sendmmsg(2)); both expose the burst as indexed
// datagram views over preallocated buffers, so a steady receive loop
// performs zero allocations per wakeup.
package batch

import (
	"net"
	"net/netip"
	"time"
)

// drainDeadline bounds the portable Reader's follow-up reads: after
// one blocking receive it keeps reading until the queue is empty or
// this deadline lapses, whichever is first. Short enough to be
// latency-invisible, long enough to empty a socket buffer.
const drainDeadline = 200 * time.Microsecond

// A Reader receives UDP datagrams in batches. Each Read wakes up for
// at least one datagram and drains up to Slots of them; Datagram and
// Addr index the result. All buffers are preallocated: a steady Read
// loop allocates nothing, on either implementation path.
//
// The Reader owns the socket read deadline during Read (the portable
// drain rewrites it), so callers that want a bounded blocking wait
// must set their deadline before every Read call.
type Reader struct {
	conn  *net.UDPConn
	bufs  [][]byte
	lens  []int
	addrs []netip.AddrPort
	mm    *mmsgReader // nil → portable deadline-drain fallback
}

// NewReader returns a Reader with the given number of datagram slots,
// each mtu bytes. On supported platforms (Linux) batches are received
// with one recvmmsg call; elsewhere a blocking read plus a short
// non-blocking drain provides the same many-per-wakeup behaviour.
func NewReader(conn *net.UDPConn, slots, mtu int) *Reader {
	if slots < 1 {
		slots = 1
	}
	if mtu < 1 {
		mtu = 1500
	}
	r := &Reader{
		conn:  conn,
		bufs:  make([][]byte, slots),
		lens:  make([]int, slots),
		addrs: make([]netip.AddrPort, slots),
	}
	backing := make([]byte, slots*mtu)
	for i := range r.bufs {
		r.bufs[i] = backing[i*mtu : (i+1)*mtu]
	}
	r.mm = newMmsgReader(conn, r.bufs)
	return r
}

// Slots returns the batch capacity.
func (r *Reader) Slots() int { return len(r.bufs) }

// Batched reports whether the one-syscall-per-batch kernel path
// (recvmmsg) is active, as opposed to the portable drain.
func (r *Reader) Batched() bool { return r.mm != nil }

// Read blocks until at least one datagram arrives (respecting the
// socket read deadline), drains whatever else is already queued, and
// returns the number of datagrams received. Errors from the wait —
// deadline expiry, a closed socket — are returned as-is, so callers
// dispatch on net.Error.Timeout and net.ErrClosed exactly as with
// ReadFromUDP.
//
//lint:hot
func (r *Reader) Read() (int, error) {
	if r.mm != nil {
		return r.mm.read(r.lens, r.addrs)
	}
	n, addr, err := r.conn.ReadFromUDPAddrPort(r.bufs[0])
	if err != nil {
		return 0, err
	}
	r.lens[0], r.addrs[0] = n, addr
	cnt := 1
	if len(r.bufs) > 1 {
		_ = r.conn.SetReadDeadline(time.Now().Add(drainDeadline)) //lint:allow detrand socket deadline bounding the non-blocking drain, not protocol logic
		for cnt < len(r.bufs) {
			n, addr, err := r.conn.ReadFromUDPAddrPort(r.bufs[cnt])
			if err != nil {
				break // empty queue (deadline) or a real error the next Read reports
			}
			r.lens[cnt], r.addrs[cnt] = n, addr
			cnt++
		}
	}
	return cnt, nil
}

// Datagram returns the i-th received datagram of the last Read. The
// slice aliases the Reader's slot buffer: valid until the next Read.
//
//lint:hot
func (r *Reader) Datagram(i int) []byte { return r.bufs[i][:r.lens[i]] }

// Addr returns the source address of the i-th datagram of the last
// Read.
//
//lint:hot
func (r *Reader) Addr(i int) netip.AddrPort { return r.addrs[i] }

// A Writer transmits UDP datagrams in batches over a CONNECTED socket
// (it uses Write semantics; destinations come from the connection).
// On supported platforms a batch goes down in one sendmmsg call;
// elsewhere it degrades to one write per datagram.
type Writer struct {
	conn *net.UDPConn
	mm   *mmsgWriter
}

// NewWriter returns a Writer sending up to slots datagrams per
// syscall.
func NewWriter(conn *net.UDPConn, slots int) *Writer {
	if slots < 1 {
		slots = 1
	}
	return &Writer{conn: conn, mm: newMmsgWriter(conn, slots)}
}

// Batched reports whether the sendmmsg kernel path is active.
func (w *Writer) Batched() bool { return w.mm != nil }

// Write transmits every datagram in order, blocking (subject to the
// socket write deadline) until all are handed to the kernel.
//
//lint:hot
func (w *Writer) Write(dgrams [][]byte) error {
	if w.mm != nil {
		return w.mm.write(dgrams)
	}
	for _, d := range dgrams {
		if _, err := w.conn.Write(d); err != nil {
			return err
		}
	}
	return nil
}
