package batch

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

func udpPair(t *testing.T) (srv *net.UDPConn, cli *net.UDPConn) {
	t.Helper()
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err = net.DialUDP("udp", nil, srv.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// drainAll reads until total datagrams arrived or the deadline lapses.
func drainAll(t *testing.T, r *Reader, total int) [][]byte {
	t.Helper()
	var got [][]byte
	for len(got) < total {
		_ = r.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := r.Read()
		if err != nil {
			t.Fatalf("Read after %d datagrams: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			got = append(got, append([]byte(nil), r.Datagram(i)...))
			if !r.Addr(i).IsValid() {
				t.Fatalf("datagram %d has invalid source address", len(got)-1)
			}
		}
	}
	return got
}

// testReaderPath sends a burst and checks every datagram and source
// address comes back intact, on whichever implementation path r uses.
func testReaderPath(t *testing.T, r *Reader, srv, cli *net.UDPConn) {
	t.Helper()
	const total = 50
	for i := 0; i < total; i++ {
		msg := []byte(fmt.Sprintf("datagram-%03d", i))
		if _, err := cli.Write(msg); err != nil {
			t.Fatal(err)
		}
	}
	got := drainAll(t, r, total)
	if len(got) != total {
		t.Fatalf("got %d datagrams, want %d", len(got), total)
	}
	// Loopback UDP preserves order; pin content exactly.
	for i, d := range got {
		if want := fmt.Sprintf("datagram-%03d", i); string(d) != want {
			t.Fatalf("datagram %d = %q, want %q", i, d, want)
		}
	}
	wantPort := cli.LocalAddr().(*net.UDPAddr).Port
	if _, err := cli.Write([]byte("addr-check")); err != nil {
		t.Fatal(err)
	}
	_ = srv.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := r.Read()
	if err != nil || n < 1 {
		t.Fatalf("Read = %d, %v", n, err)
	}
	if got := r.Addr(0); int(got.Port()) != wantPort || !got.Addr().Unmap().Is4() {
		t.Fatalf("source address = %v, want 127.0.0.1:%d", got, wantPort)
	}
}

func TestReaderBatch(t *testing.T) {
	srv, cli := udpPair(t)
	r := NewReader(srv, 16, 1500)
	testReaderPath(t, r, srv, cli)
}

func TestReaderPortableFallback(t *testing.T) {
	srv, cli := udpPair(t)
	r := NewReader(srv, 16, 1500)
	r.mm = nil // force the deadline-drain path even where mmsg exists
	if r.Batched() {
		t.Fatal("fallback reader claims to be batched")
	}
	testReaderPath(t, r, srv, cli)
}

func TestReaderDeadline(t *testing.T) {
	srv, _ := udpPair(t)
	for _, forcePortable := range []bool{false, true} {
		r := NewReader(srv, 8, 1500)
		if forcePortable {
			r.mm = nil
		}
		_ = srv.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, err := r.Read()
		if n != 0 || err == nil {
			t.Fatalf("Read on empty socket = %d, %v; want 0 and a timeout", n, err)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("error %v (portable=%v) is not a net timeout", err, forcePortable)
		}
	}
}

func TestReaderClosedSocket(t *testing.T) {
	srv, _ := udpPair(t)
	r := NewReader(srv, 8, 1500)
	srv.Close()
	_, err := r.Read()
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Read on closed socket = %v, want net.ErrClosed", err)
	}
}

func testWriterPath(t *testing.T, w *Writer, srv *net.UDPConn) {
	t.Helper()
	const total = 50
	dgrams := make([][]byte, total)
	for i := range dgrams {
		dgrams[i] = []byte(fmt.Sprintf("out-%03d", i))
	}
	// Write in two uneven batches to cross any slot-window boundary.
	if err := w.Write(dgrams[:33]); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(dgrams[33:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1500)
	for i := 0; i < total; i++ {
		_ = srv.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := srv.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if want := fmt.Sprintf("out-%03d", i); string(buf[:n]) != want {
			t.Fatalf("datagram %d = %q, want %q", i, buf[:n], want)
		}
	}
}

func TestWriterBatch(t *testing.T) {
	srv, cli := udpPair(t)
	testWriterPath(t, NewWriter(cli, 16), srv)
}

func TestWriterPortableFallback(t *testing.T) {
	srv, cli := udpPair(t)
	w := NewWriter(cli, 16)
	w.mm = nil
	testWriterPath(t, w, srv)
}

// TestReaderZeroAllocSteady pins the per-wakeup allocation count of a
// primed Reader at zero (the receive-loop prerequisite for the
// transport's end-to-end zero-alloc path).
func TestReaderZeroAllocSteady(t *testing.T) {
	srv, cli := udpPair(t)
	r := NewReader(srv, 8, 1500)
	payload := []byte("steady-state-datagram")
	step := func() {
		for i := 0; i < 4; i++ {
			if _, err := cli.Write(payload); err != nil {
				t.Fatal(err)
			}
		}
		got := 0
		for got < 4 {
			_ = srv.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, err := r.Read()
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	for i := 0; i < 8; i++ {
		step()
	}
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Errorf("steady Read loop allocates %.1f objects per wakeup, want 0", allocs)
	}
}
